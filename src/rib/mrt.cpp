#include "rib/mrt.hpp"

#include <array>
#include <istream>
#include <sstream>
#include <string>
#include <type_traits>

namespace treecache::rib {

namespace {

[[noreturn]] void fail_at(std::uint64_t offset, const std::string& what) {
  throw CheckFailure("MRT: " + what + " at offset " + std::to_string(offset));
}

/// Bounds-checked big-endian field reader over one record's bytes.
/// `base` is the absolute file offset of data[0], so every error names
/// the exact byte that went wrong.
struct Cursor {
  std::span<const std::uint8_t> data;
  std::uint64_t base = 0;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    fail_at(base + pos, what);
  }
  void need(std::size_t n, const char* what) const {
    if (data.size() - pos < n) {
      fail(std::string(what) + " overruns the record");
    }
  }
  std::uint8_t u8(const char* what) {
    need(1, what);
    return data[pos++];
  }
  std::uint16_t u16(const char* what) {
    need(2, what);
    const auto value = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data[pos]) << 8) | data[pos + 1]);
    pos += 2;
    return value;
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value = (value << 8) | data[pos + static_cast<std::size_t>(i)];
    }
    pos += 4;
    return value;
  }
  std::span<const std::uint8_t> take(std::size_t n, const char* what) {
    need(n, what);
    const auto bytes = data.subspan(pos, n);
    pos += n;
    return bytes;
  }
  /// A sub-cursor over the next `n` bytes (a length-prefixed field's
  /// body); reads inside it can never escape the field.
  Cursor sub(std::size_t n, const char* what) {
    const std::uint64_t sub_base = base + pos;
    return Cursor{take(n, what), sub_base};
  }
  [[nodiscard]] std::size_t remaining() const { return data.size() - pos; }
  [[nodiscard]] bool done() const { return pos == data.size(); }
};

template <typename Bits>
Bits bits_from_bytes(std::span<const std::uint8_t> bytes);

template <>
std::uint32_t bits_from_bytes<std::uint32_t>(
    std::span<const std::uint8_t> bytes) {
  std::uint32_t bits = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bits |= static_cast<std::uint32_t>(bytes[i]) << (24 - 8 * i);
  }
  return bits;
}

template <>
fib::U128 bits_from_bytes<fib::U128>(std::span<const std::uint8_t> bytes) {
  fib::U128 bits;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto byte = static_cast<std::uint64_t>(bytes[i]);
    if (i < 8) {
      bits.hi |= byte << (56 - 8 * i);
    } else {
      bits.lo |= byte << (56 - 8 * (i - 8));
    }
  }
  return bits;
}

/// One NLRI element: length byte + ceil(length/8) prefix bytes.
/// PrefixT::make masks any pad bits in the final byte.
template <typename PrefixT>
PrefixT read_nlri_prefix(Cursor& c) {
  const std::uint8_t length = c.u8("NLRI prefix length");
  if (length > PrefixT::kWidth) {
    c.fail("NLRI prefix length " + std::to_string(length) +
           " exceeds the address width");
  }
  const auto bytes = c.take((length + 7u) / 8u, "NLRI prefix bits");
  return PrefixT::make(bits_from_bytes<typename PrefixT::Bits>(bytes),
                       length);
}

/// Next-hop identity: the low 32 bits of the next-hop address bytes.
NextHop low32(std::span<const std::uint8_t> bytes) {
  std::uint32_t value = 0;
  for (const std::uint8_t byte :
       bytes.size() > 4 ? bytes.last(4) : bytes) {
    value = (value << 8) | byte;
  }
  return value;
}

/// The attributes the pipeline consumes, pulled from one BGP attribute
/// block. Everything else (ORIGIN, AS_PATH, communities, ...) is skipped
/// after a bounds-validated length walk.
struct ParsedAttrs {
  std::optional<NextHop> next_hop4;     // NEXT_HOP (type 3)
  std::optional<NextHop> mp_next_hop;   // MP_REACH next hop, low 32 bits
  std::uint16_t mp_reach_afi = 0;
  std::optional<Cursor> mp_reach_nlri;  // full MP_REACH form only
  std::uint16_t mp_unreach_afi = 0;
  std::optional<Cursor> mp_unreach_nlri;
};

/// `table_dump_v2` selects the abbreviated MP_REACH_NLRI form of
/// RFC 6396 §4.3.4 (next-hop length + next hop only, family implied by
/// the record subtype).
ParsedAttrs walk_attributes(Cursor attrs, bool table_dump_v2) {
  ParsedAttrs out;
  while (!attrs.done()) {
    const std::uint8_t flags = attrs.u8("attribute flags");
    const std::uint8_t type = attrs.u8("attribute type");
    const std::size_t length = (flags & 0x10) != 0
                                   ? attrs.u16("attribute length")
                                   : attrs.u8("attribute length");
    Cursor body = attrs.sub(length, "attribute body");
    if (type == 3 && length == 4) {  // NEXT_HOP
      out.next_hop4 = body.u32("NEXT_HOP address");
    } else if (type == 14) {  // MP_REACH_NLRI
      std::uint16_t afi = 0;
      if (!table_dump_v2) {
        afi = body.u16("MP_REACH AFI");
        body.u8("MP_REACH SAFI");
      }
      const std::uint8_t nh_len = body.u8("MP_REACH next-hop length");
      out.mp_next_hop = low32(body.take(nh_len, "MP_REACH next hop"));
      if (!table_dump_v2) {
        body.u8("MP_REACH reserved byte");
        out.mp_reach_afi = afi;
        out.mp_reach_nlri = body;  // rest of the attribute is NLRI
      }
    } else if (type == 15) {  // MP_UNREACH_NLRI
      out.mp_unreach_afi = body.u16("MP_UNREACH AFI");
      body.u8("MP_UNREACH SAFI");
      out.mp_unreach_nlri = body;
    }
  }
  return out;
}

void decode_peer_index_table(Cursor c) {
  c.u32("collector BGP ID");
  c.take(c.u16("view name length"), "view name");
  const std::uint16_t peers = c.u16("peer count");
  for (std::uint16_t i = 0; i < peers; ++i) {
    const std::uint8_t type = c.u8("peer type");
    c.u32("peer BGP ID");
    c.take((type & 0x1) != 0 ? 16 : 4, "peer IP address");
    c.take((type & 0x2) != 0 ? 4 : 2, "peer AS");
  }
  if (!c.done()) c.fail("trailing bytes after the peer index table");
}

template <typename PrefixT>
void decode_rib_record(Cursor c, std::uint32_t timestamp,
                       std::deque<FeedRecord>& out) {
  c.u32("RIB sequence number");
  const PrefixT prefix = read_nlri_prefix<PrefixT>(c);
  const std::uint16_t entries = c.u16("RIB entry count");
  std::optional<NextHop> hop;
  for (std::uint16_t e = 0; e < entries; ++e) {
    const std::uint16_t peer = c.u16("RIB entry peer index");
    c.u32("RIB entry originated time");
    const std::uint16_t attr_len = c.u16("RIB entry attribute length");
    const ParsedAttrs attrs =
        walk_attributes(c.sub(attr_len, "RIB entry attributes"), true);
    if (!hop) {
      if (attrs.next_hop4) {
        hop = *attrs.next_hop4;
      } else if (attrs.mp_next_hop) {
        hop = *attrs.mp_next_hop;
      } else {
        hop = static_cast<NextHop>(peer) + 1;
      }
    }
  }
  if (!c.done()) c.fail("trailing bytes after the RIB entries");
  if (entries == 0) return;  // prefix with no surviving routes
  FeedRecord record;
  record.op = FeedOp::kDump;
  record.timestamp = timestamp;
  record.next_hop = *hop;
  if constexpr (std::is_same_v<PrefixT, fib::Prefix6>) {
    record.v6 = true;
    record.prefix6 = prefix;
  } else {
    record.v6 = false;
    record.prefix4 = prefix;
  }
  out.push_back(record);
}

template <typename PrefixT>
void push_updates(Cursor nlri, FeedOp op, std::uint64_t timestamp,
                  NextHop next_hop, std::deque<FeedRecord>& out) {
  while (!nlri.done()) {
    FeedRecord record;
    record.op = op;
    record.timestamp = timestamp;
    if (op != FeedOp::kWithdraw) record.next_hop = next_hop;
    const PrefixT prefix = read_nlri_prefix<PrefixT>(nlri);
    if constexpr (std::is_same_v<PrefixT, fib::Prefix6>) {
      record.v6 = true;
      record.prefix6 = prefix;
    } else {
      record.v6 = false;
      record.prefix4 = prefix;
    }
    out.push_back(record);
  }
}

/// Dispatches an MP NLRI block by its AFI (1 = IPv4 over MP, 2 = IPv6).
void push_mp_updates(Cursor nlri, std::uint16_t afi, FeedOp op,
                     std::uint64_t timestamp, NextHop next_hop,
                     std::deque<FeedRecord>& out) {
  if (afi == 2) {
    push_updates<fib::Prefix6>(nlri, op, timestamp, next_hop, out);
  } else if (afi == 1) {
    push_updates<fib::Prefix>(nlri, op, timestamp, next_hop, out);
  } else {
    nlri.fail("unsupported MP AFI " + std::to_string(afi));
  }
}

void decode_bgp4mp(Cursor c, std::uint16_t subtype, std::uint32_t timestamp,
                   bool extended, std::deque<FeedRecord>& out) {
  if (extended) c.u32("BGP4MP_ET microsecond timestamp");
  if (subtype != kMrtBgp4mpMessage && subtype != kMrtBgp4mpMessageAs4) {
    return;  // STATE_CHANGE and friends carry no routes
  }
  const bool as4 = subtype == kMrtBgp4mpMessageAs4;
  if (as4) {
    c.u32("peer AS");
    c.u32("local AS");
  } else {
    c.u16("peer AS");
    c.u16("local AS");
  }
  c.u16("interface index");
  const std::uint16_t afi = c.u16("BGP4MP address family");
  if (afi != 1 && afi != 2) {
    c.fail("unsupported BGP4MP AFI " + std::to_string(afi));
  }
  const std::size_t addr_bytes = afi == 2 ? 16 : 4;
  c.take(addr_bytes, "peer IP address");
  c.take(addr_bytes, "local IP address");
  for (const std::uint8_t byte : c.take(16, "BGP marker")) {
    if (byte != 0xFF) c.fail("bad BGP marker (expected 16 x 0xFF)");
  }
  const std::uint16_t msg_len = c.u16("BGP message length");
  if (msg_len < 19) {
    c.fail("BGP message length " + std::to_string(msg_len) +
           " is below the 19-byte header");
  }
  const std::uint8_t msg_type = c.u8("BGP message type");
  Cursor msg = c.sub(msg_len - 19, "BGP message body");
  if (!c.done()) c.fail("trailing bytes after the BGP message");
  if (msg_type != 2) return;  // only UPDATEs carry routes

  const std::uint16_t withdrawn_len = msg.u16("withdrawn routes length");
  Cursor withdrawn = msg.sub(withdrawn_len, "withdrawn routes");
  push_updates<fib::Prefix>(withdrawn, FeedOp::kWithdraw, timestamp, 0, out);
  const std::uint16_t attr_len = msg.u16("path attribute length");
  const ParsedAttrs attrs =
      walk_attributes(msg.sub(attr_len, "path attributes"), false);
  if (attrs.mp_unreach_nlri) {
    push_mp_updates(*attrs.mp_unreach_nlri, attrs.mp_unreach_afi,
                    FeedOp::kWithdraw, timestamp, 0, out);
  }
  // Remaining message bytes are the classic IPv4 NLRI.
  push_updates<fib::Prefix>(msg.sub(msg.remaining(), "NLRI"),
                            FeedOp::kAnnounce, timestamp,
                            attrs.next_hop4.value_or(0), out);
  if (attrs.mp_reach_nlri) {
    push_mp_updates(*attrs.mp_reach_nlri, attrs.mp_reach_afi,
                    FeedOp::kAnnounce, timestamp,
                    attrs.mp_next_hop.value_or(0), out);
  }
}

}  // namespace

bool looks_like_mrt(std::span<const std::uint8_t> head) {
  if (head.size() < kMrtHeaderBytes) return false;
  const auto type =
      static_cast<std::uint16_t>((head[4] << 8) | head[5]);
  if (type != kMrtTypeTableDump && type != kMrtTypeTableDumpV2 &&
      type != kMrtTypeBgp4mp && type != kMrtTypeBgp4mpEt) {
    return false;
  }
  std::uint32_t length = 0;
  for (int i = 8; i < 12; ++i) {
    length = (length << 8) | head[static_cast<std::size_t>(i)];
  }
  return length <= kMaxMrtRecordBytes;
}

std::uint32_t MrtDecoder::validate_header() const {
  Cursor h{std::span(buffer_).first(kMrtHeaderBytes), record_offset_};
  h.u32("timestamp");
  const std::uint16_t type = h.u16("type");
  if (type != kMrtTypeTableDump && type != kMrtTypeTableDumpV2 &&
      type != kMrtTypeBgp4mp && type != kMrtTypeBgp4mpEt) {
    fail_at(record_offset_ + 4,
            "unsupported MRT record type " + std::to_string(type));
  }
  h.u16("subtype");
  const std::uint32_t length = h.u32("record length");
  if (length > kMaxMrtRecordBytes) {
    fail_at(record_offset_ + 8,
            "record length " + std::to_string(length) + " exceeds the " +
                std::to_string(kMaxMrtRecordBytes) + "-byte cap");
  }
  return length;
}

void MrtDecoder::decode_record() {
  Cursor h{std::span(buffer_).first(kMrtHeaderBytes), record_offset_};
  const std::uint32_t timestamp = h.u32("timestamp");
  const std::uint16_t type = h.u16("type");
  const std::uint16_t subtype = h.u16("subtype");
  Cursor body{std::span(buffer_).subspan(kMrtHeaderBytes),
              record_offset_ + kMrtHeaderBytes};
  switch (type) {
    case kMrtTypeTableDumpV2:
      switch (subtype) {
        case kMrtPeerIndexTable:
          decode_peer_index_table(body);
          break;
        case kMrtRibIpv4Unicast:
          decode_rib_record<fib::Prefix>(body, timestamp, pending_);
          break;
        case kMrtRibIpv6Unicast:
          decode_rib_record<fib::Prefix6>(body, timestamp, pending_);
          break;
        default:
          break;  // RIB_GENERIC / multicast / ADDPATH subtypes: skipped
      }
      break;
    case kMrtTypeBgp4mp:
      decode_bgp4mp(body, subtype, timestamp, false, pending_);
      break;
    case kMrtTypeBgp4mpEt:
      decode_bgp4mp(body, subtype, timestamp, true, pending_);
      break;
    default:
      break;  // legacy TABLE_DUMP: length-validated skip
  }
}

std::optional<FeedRecord> MrtDecoder::next(std::istream& in) {
  while (true) {
    if (!pending_.empty()) {
      const FeedRecord record = pending_.front();
      pending_.pop_front();
      return record;
    }
    while (buffer_.size() < want_) {
      const std::size_t old = buffer_.size();
      buffer_.resize(want_);
      in.read(reinterpret_cast<char*>(buffer_.data() + old),
              static_cast<std::streamsize>(want_ - old));
      const auto got = static_cast<std::size_t>(in.gcount());
      buffer_.resize(old + got);
      if (got == 0) return std::nullopt;  // drained; caller may retry
    }
    if (want_ == kMrtHeaderBytes) {
      const std::uint32_t body = validate_header();
      want_ = kMrtHeaderBytes + body;
      if (body > 0) continue;
    }
    decode_record();
    record_offset_ += buffer_.size();
    ++mrt_records_;
    buffer_.clear();
    want_ = kMrtHeaderBytes;
  }
}

std::vector<FeedRecord> decode_mrt(std::span<const std::uint8_t> bytes) {
  std::vector<FeedRecord> out;
  if (bytes.empty()) return out;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  MrtDecoder decoder;
  while (const auto record = decoder.next(in)) {
    out.push_back(*record);
  }
  if (decoder.mid_record()) {
    fail_at(decoder.record_offset(), "truncated record (file ends mid-record)");
  }
  return out;
}

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void put_prefix(std::vector<std::uint8_t>& out, std::uint32_t bits,
                std::uint8_t length) {
  const std::size_t n = (length + 7u) / 8u;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (24 - 8 * i)));
  }
}

void put_prefix(std::vector<std::uint8_t>& out, const fib::U128& bits,
                std::uint8_t length) {
  const std::size_t n = (length + 7u) / 8u;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t word = i < 8 ? bits.hi : bits.lo;
    out.push_back(static_cast<std::uint8_t>(word >> (56 - 8 * (i % 8))));
  }
}

void put_bytes(std::vector<std::uint8_t>& out,
               const std::vector<std::uint8_t>& bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

}  // namespace

void MrtWriter::emit_record(std::uint16_t type, std::uint16_t subtype,
                            std::uint64_t timestamp,
                            const std::vector<std::uint8_t>& body) {
  TC_CHECK(timestamp <= 0xFFFFFFFFull,
           "timestamp " + std::to_string(timestamp) +
               " does not fit the 32-bit MRT header");
  TC_CHECK(body.size() <= kMaxMrtRecordBytes, "MRT record body too large");
  std::vector<std::uint8_t> header;
  put_u32(header, static_cast<std::uint32_t>(timestamp));
  put_u16(header, type);
  put_u16(header, subtype);
  put_u32(header, static_cast<std::uint32_t>(body.size()));
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
  TC_CHECK(out_.good(), "MRT write failed");
  bytes_ += header.size() + body.size();
}

void MrtWriter::write_peer_index_table() {
  std::vector<std::uint8_t> body;
  put_u32(body, 0);   // collector BGP ID
  put_u16(body, 0);   // empty view name
  put_u16(body, 1);   // one synthetic peer, index 0
  put_u8(body, 0x2);  // IPv4 address, 4-byte AS
  put_u32(body, 0);   // peer BGP ID
  put_u32(body, 0);   // peer IP 0.0.0.0
  put_u32(body, 0);   // peer AS
  emit_record(kMrtTypeTableDumpV2, kMrtPeerIndexTable, 0, body);
}

void MrtWriter::write(const FeedRecord& record) {
  if (record.op == FeedOp::kDump) {
    if (!peer_table_written_) {
      write_peer_index_table();
      peer_table_written_ = true;
    }
    std::vector<std::uint8_t> body;
    put_u32(body, sequence_++);
    if (record.v6) {
      put_u8(body, record.prefix6.length);
      put_prefix(body, record.prefix6.bits, record.prefix6.length);
    } else {
      put_u8(body, record.prefix4.length);
      put_prefix(body, record.prefix4.bits, record.prefix4.length);
    }
    put_u16(body, 1);  // one RIB entry
    put_u16(body, 0);  // peer index 0
    put_u32(body, 0);  // originated time
    std::vector<std::uint8_t> attrs;
    if (record.v6) {
      // Abbreviated MP_REACH_NLRI (RFC 6396 §4.3.4): next-hop length +
      // next hop, identity in the low 32 bits of the address.
      put_u8(attrs, 0x80);  // optional
      put_u8(attrs, 14);    // MP_REACH_NLRI
      put_u8(attrs, 17);
      put_u8(attrs, 16);  // next-hop length
      for (int i = 0; i < 12; ++i) put_u8(attrs, 0);
      put_u32(attrs, record.next_hop);
    } else {
      put_u8(attrs, 0x40);  // well-known
      put_u8(attrs, 3);     // NEXT_HOP
      put_u8(attrs, 4);
      put_u32(attrs, record.next_hop);
    }
    put_u16(body, static_cast<std::uint16_t>(attrs.size()));
    put_bytes(body, attrs);
    emit_record(kMrtTypeTableDumpV2,
                record.v6 ? kMrtRibIpv6Unicast : kMrtRibIpv4Unicast,
                record.timestamp, body);
    return;
  }

  // Announce / withdraw: one BGP4MP MESSAGE_AS4 UPDATE per record.
  std::vector<std::uint8_t> attrs;
  std::vector<std::uint8_t> withdrawn;
  std::vector<std::uint8_t> nlri;
  if (record.op == FeedOp::kWithdraw) {
    if (record.v6) {
      std::vector<std::uint8_t> mp;
      put_u16(mp, 2);  // AFI IPv6
      put_u8(mp, 1);   // SAFI unicast
      put_u8(mp, record.prefix6.length);
      put_prefix(mp, record.prefix6.bits, record.prefix6.length);
      put_u8(attrs, 0x80);  // optional
      put_u8(attrs, 15);    // MP_UNREACH_NLRI
      put_u8(attrs, static_cast<std::uint8_t>(mp.size()));
      put_bytes(attrs, mp);
    } else {
      put_u8(withdrawn, record.prefix4.length);
      put_prefix(withdrawn, record.prefix4.bits, record.prefix4.length);
    }
  } else {
    // ORIGIN INCOMPLETE + empty AS_PATH keep the UPDATE well-formed for
    // third-party MRT tools.
    put_u8(attrs, 0x40);
    put_u8(attrs, 1);  // ORIGIN
    put_u8(attrs, 1);
    put_u8(attrs, 2);
    put_u8(attrs, 0x40);
    put_u8(attrs, 2);  // AS_PATH
    put_u8(attrs, 0);
    if (record.v6) {
      std::vector<std::uint8_t> mp;
      put_u16(mp, 2);  // AFI IPv6
      put_u8(mp, 1);   // SAFI unicast
      put_u8(mp, 16);  // next-hop length
      for (int i = 0; i < 12; ++i) put_u8(mp, 0);
      put_u32(mp, record.next_hop);
      put_u8(mp, 0);  // reserved
      put_u8(mp, record.prefix6.length);
      put_prefix(mp, record.prefix6.bits, record.prefix6.length);
      // Extended length on purpose: exercises the decoder's 2-byte
      // attribute-length path.
      put_u8(attrs, 0x90);  // optional + extended length
      put_u8(attrs, 14);    // MP_REACH_NLRI
      put_u16(attrs, static_cast<std::uint16_t>(mp.size()));
      put_bytes(attrs, mp);
    } else {
      put_u8(attrs, 0x40);
      put_u8(attrs, 3);  // NEXT_HOP
      put_u8(attrs, 4);
      put_u32(attrs, record.next_hop);
      put_u8(nlri, record.prefix4.length);
      put_prefix(nlri, record.prefix4.bits, record.prefix4.length);
    }
  }

  std::vector<std::uint8_t> msg;
  put_u16(msg, static_cast<std::uint16_t>(withdrawn.size()));
  put_bytes(msg, withdrawn);
  put_u16(msg, static_cast<std::uint16_t>(attrs.size()));
  put_bytes(msg, attrs);
  put_bytes(msg, nlri);

  std::vector<std::uint8_t> body;
  put_u32(body, 0);  // peer AS
  put_u32(body, 0);  // local AS
  put_u16(body, 0);  // interface index
  put_u16(body, record.v6 ? 2 : 1);
  const std::size_t addr_bytes = record.v6 ? 16 : 4;
  for (std::size_t i = 0; i < 2 * addr_bytes; ++i) put_u8(body, 0);
  for (int i = 0; i < 16; ++i) put_u8(body, 0xFF);  // BGP marker
  put_u16(body, static_cast<std::uint16_t>(19 + msg.size()));
  put_u8(body, 2);  // UPDATE
  put_bytes(body, msg);
  emit_record(kMrtTypeBgp4mp, kMrtBgp4mpMessageAs4, record.timestamp, body);
}

std::vector<std::uint8_t> encode_mrt_feed(
    const std::vector<FeedRecord>& records) {
  std::ostringstream out(std::ios::binary);
  MrtWriter writer(out);
  for (const FeedRecord& record : records) {
    writer.write(record);
  }
  const std::string bytes = out.str();
  return {bytes.begin(), bytes.end()};
}

}  // namespace treecache::rib
