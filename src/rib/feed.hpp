// Line-oriented MRT-style RIB feed format: the linearized form of a BGP
// table dump plus its update stream (what `bgpdump -m` emits from
// Route-Views MRT files, reduced to the fields the cache model uses).
//
// Grammar (one record per line; '#' starts a comment, blank lines skip):
//   TABLE_DUMP|<prefix>|<next-hop-id>             snapshot route
//   <timestamp>|announce|<prefix>|<next-hop-id>   update: add/replace
//   <timestamp>|withdraw|<prefix>                 update: delete
// <prefix> is IPv4 dotted-quad or IPv6 hex-group form, auto-detected per
// line by the presence of ':'; <next-hop-id> and <timestamp> are decimal.
// Parse errors throw CheckFailure carrying the 1-based line number, in
// the same style as core/trace.hpp's parse_request_line.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "fib/ipv6.hpp"
#include "rib/rib_table.hpp"
#include "util/rng.hpp"

namespace treecache::rib {

enum class FeedOp : std::uint8_t { kDump, kAnnounce, kWithdraw };

/// One parsed feed line. Exactly one of prefix4/prefix6 is meaningful,
/// selected by `v6`.
struct FeedRecord {
  FeedOp op = FeedOp::kDump;
  std::uint64_t timestamp = 0;  // update lines only
  bool v6 = false;
  fib::Prefix prefix4{};   // valid when !v6
  fib::Prefix6 prefix6{};  // valid when v6
  NextHop next_hop = 0;    // dump/announce lines only

  friend bool operator==(const FeedRecord&, const FeedRecord&) = default;
};

/// Parses one non-comment, non-blank feed line. Throws CheckFailure
/// naming `line_number` (1-based) on malformed input.
[[nodiscard]] FeedRecord parse_feed_line(const std::string& line,
                                         std::size_t line_number);

/// Serializes a record in the exact grammar parse_feed_line accepts.
[[nodiscard]] std::string format_feed_record(const FeedRecord& record);

/// Streams feed files line by line (never slurps — feeds can be
/// internet-table sized). Multiple paths are read back to back, so a
/// snapshot dump and an update feed can live in separate files. Errors
/// name the file and line.
class FeedReader {
 public:
  explicit FeedReader(std::vector<std::string> paths);

  /// The next record, or nullopt at end of the last file.
  std::optional<FeedRecord> next();

  /// Records returned so far.
  [[nodiscard]] std::uint64_t records() const { return records_; }

 private:
  bool open_next_file();

  std::vector<std::string> paths_;
  std::size_t file_ = 0;  // index of the NEXT path to open
  std::ifstream in_;
  bool in_open_ = false;
  std::size_t line_number_ = 0;
  std::uint64_t records_ = 0;
};

/// Synthetic feed generator — the source of the checked-in CI fixtures,
/// so no external BGP data is ever needed. Emits a TABLE_DUMP snapshot of
/// `routes` prefixes (per family) followed by `updates` timestamped
/// events over the same table: re-announces with a new next hop, fresh
/// more-specific announces, and withdraws of live routes.
struct SyntheticFeedConfig {
  std::size_t routes = 256;
  std::size_t updates = 64;
  int family = 4;  // 4 = IPv4, 6 = IPv6, 46 = both (v4 dump first)
  double withdraw_probability = 0.35;
  /// Probability that an announce introduces a fresh more-specific
  /// prefix instead of re-routing an existing one.
  double fresh_announce_probability = 0.3;
  std::uint8_t max_length4 = 24;
  std::uint8_t max_length6 = 64;
  double deaggregation = 0.45;
  std::uint64_t base_timestamp = 1704067200;  // 2024-01-01 00:00:00 UTC
};

[[nodiscard]] std::vector<FeedRecord> generate_feed(
    const SyntheticFeedConfig& config, Rng& rng);

}  // namespace treecache::rib
