// Line-oriented MRT-style RIB feed format: the linearized form of a BGP
// table dump plus its update stream (what `bgpdump -m` emits from
// Route-Views MRT files, reduced to the fields the cache model uses).
//
// Grammar (one record per line; '#' starts a comment, blank lines skip):
//   TABLE_DUMP|<prefix>|<next-hop-id>             snapshot route
//   <timestamp>|announce|<prefix>|<next-hop-id>   update: add/replace
//   <timestamp>|withdraw|<prefix>                 update: delete
// <prefix> is IPv4 dotted-quad or IPv6 hex-group form, auto-detected per
// line by the presence of ':'; <next-hop-id> and <timestamp> are decimal.
// Parse errors throw CheckFailure carrying the 1-based line number, in
// the same style as core/trace.hpp's parse_request_line.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fib/ipv6.hpp"
#include "rib/rib_table.hpp"
#include "util/rng.hpp"

namespace treecache::rib {

enum class FeedOp : std::uint8_t { kDump, kAnnounce, kWithdraw };

/// One parsed feed line. Exactly one of prefix4/prefix6 is meaningful,
/// selected by `v6`.
struct FeedRecord {
  FeedOp op = FeedOp::kDump;
  std::uint64_t timestamp = 0;  // update lines only
  bool v6 = false;
  fib::Prefix prefix4{};   // valid when !v6
  fib::Prefix6 prefix6{};  // valid when v6
  NextHop next_hop = 0;    // dump/announce lines only

  friend bool operator==(const FeedRecord&, const FeedRecord&) = default;
};

/// Parses one non-comment, non-blank feed line. Throws CheckFailure
/// naming `line_number` (1-based) on malformed input.
[[nodiscard]] FeedRecord parse_feed_line(const std::string& line,
                                         std::size_t line_number);

/// Serializes a record in the exact grammar parse_feed_line accepts.
[[nodiscard]] std::string format_feed_record(const FeedRecord& record);

/// Tail-follow tuning for FeedReader::follow(). The reader polls the
/// last feed file for growth and gives up after `idle` with no new
/// bytes (zero = follow forever, until the process is stopped).
struct FollowOptions {
  std::chrono::milliseconds poll{20};
  std::chrono::milliseconds idle{1000};
};

class MrtDecoder;

/// Streams feed files record by record (never slurps — feeds can be
/// internet-table sized). Each file's format is sniffed at open: binary
/// MRT (RFC 6396, see rib/mrt.hpp) or the text grammar above, so dumps
/// and update feeds can mix formats freely. Multiple paths are read back
/// to back. Errors name the file plus the line (text) or byte offset
/// (MRT). Text hardening: a UTF-8 BOM at file start is stripped, CRLF
/// line endings parse, and a truncated final line without a newline
/// still parses (or errors with its position).
class FeedReader {
 public:
  explicit FeedReader(std::vector<std::string> paths);
  ~FeedReader();

  /// Switches to tail-follow mode: when the LAST file runs out of
  /// bytes, poll it for growth instead of returning — a growing feed
  /// becomes an unbounded churn stream. next() returns nullopt only
  /// after `options.idle` passes with no growth (a partial MRT record
  /// left at that point is a truncation error).
  void follow(const FollowOptions& options) { follow_ = options; }

  /// The next record, or nullopt at end of the last file.
  std::optional<FeedRecord> next();

  /// Records returned so far.
  [[nodiscard]] std::uint64_t records() const { return records_; }

  /// Feed bytes consumed so far, across all files and both formats.
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  enum class Format : std::uint8_t { kText, kMrt };

  bool open_next_file();
  void detect_format();
  /// True when tail-follow applies here: follow mode is on, the current
  /// file is the last one, and the idle deadline has not passed yet.
  [[nodiscard]] bool following_here() const;
  /// Polls the current file for growth; false once idle expires.
  bool wait_for_growth();
  void note_progress(std::uint64_t n);
  std::optional<FeedRecord> next_text();
  std::optional<FeedRecord> next_mrt();

  std::vector<std::string> paths_;
  std::size_t file_ = 0;  // index of the NEXT path to open
  std::ifstream in_;
  bool in_open_ = false;
  Format format_ = Format::kText;
  std::unique_ptr<MrtDecoder> mrt_;
  std::size_t line_number_ = 0;
  std::string carry_;  // partial tail line stashed while following
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t file_bytes_seen_ = 0;
  std::optional<FollowOptions> follow_;
  bool follow_done_ = false;
  std::chrono::steady_clock::time_point last_growth_{};
};

/// Synthetic feed generator — the source of the checked-in CI fixtures,
/// so no external BGP data is ever needed. Emits a TABLE_DUMP snapshot of
/// `routes` prefixes (per family) followed by `updates` timestamped
/// events over the same table: re-announces with a new next hop, fresh
/// more-specific announces, and withdraws of live routes.
struct SyntheticFeedConfig {
  std::size_t routes = 256;
  std::size_t updates = 64;
  int family = 4;  // 4 = IPv4, 6 = IPv6, 46 = both (v4 dump first)
  double withdraw_probability = 0.35;
  /// Probability that an announce introduces a fresh more-specific
  /// prefix instead of re-routing an existing one.
  double fresh_announce_probability = 0.3;
  std::uint8_t max_length4 = 24;
  std::uint8_t max_length6 = 64;
  double deaggregation = 0.45;
  std::uint64_t base_timestamp = 1704067200;  // 2024-01-01 00:00:00 UTC
};

[[nodiscard]] std::vector<FeedRecord> generate_feed(
    const SyntheticFeedConfig& config, Rng& rng);

}  // namespace treecache::rib
