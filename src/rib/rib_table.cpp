#include "rib/rib_table.hpp"

#include <algorithm>

namespace treecache::rib {

template <typename PrefixT>
bool BasicRibTable<PrefixT>::route_add(const PrefixT& prefix,
                                       NextHop next_hop) {
  std::uint32_t node = 0;
  for (unsigned i = 0; i < prefix.length; ++i) {
    const std::uint32_t branch = fib::key_bit(prefix.bits, i) ? 1 : 0;
    if (nodes_[node].child[branch] == 0) {
      // Child links are 32-bit; internet-scale tables stay far under
      // this, but a hostile feed must fail loudly, not wrap.
      TC_CHECK(nodes_.size() <= 0xFFFFFFFFull,
               "RIB trie exceeds 2^32 nodes");
      nodes_[node].child[branch] = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{});
    }
    node = nodes_[node].child[branch];
  }
  const bool fresh = !nodes_[node].occupied;
  nodes_[node].occupied = true;
  nodes_[node].next_hop = next_hop;
  if (fresh) ++routes_;
  return fresh;
}

template <typename PrefixT>
bool BasicRibTable<PrefixT>::route_delete(const PrefixT& prefix) {
  const auto [node, found] = find(prefix);
  if (!found || !nodes_[node].occupied) return false;
  nodes_[node].occupied = false;
  nodes_[node].next_hop = 0;
  --routes_;
  return true;
}

template <typename PrefixT>
std::optional<NextHop> BasicRibTable<PrefixT>::lookup(const Bits& addr) const {
  std::optional<NextHop> best;
  std::uint32_t node = 0;
  for (unsigned depth = 0;; ++depth) {
    if (nodes_[node].occupied) best = nodes_[node].next_hop;
    if (depth == PrefixT::kWidth) break;
    const std::uint32_t child =
        nodes_[node].child[fib::key_bit(addr, depth) ? 1 : 0];
    if (child == 0) break;
    node = child;
  }
  return best;
}

template <typename PrefixT>
std::optional<NextHop> BasicRibTable<PrefixT>::exact(
    const PrefixT& prefix) const {
  const auto [node, found] = find(prefix);
  if (!found || !nodes_[node].occupied) return std::nullopt;
  return nodes_[node].next_hop;
}

template <typename PrefixT>
std::pair<std::uint32_t, bool> BasicRibTable<PrefixT>::find(
    const PrefixT& prefix) const {
  std::uint32_t node = 0;
  for (unsigned i = 0; i < prefix.length; ++i) {
    const std::uint32_t child =
        nodes_[node].child[fib::key_bit(prefix.bits, i) ? 1 : 0];
    if (child == 0) return {0, false};
    node = child;
  }
  return {node, true};
}

template <typename PrefixT>
std::vector<PrefixT> BasicRibTable<PrefixT>::prefixes() const {
  std::vector<PrefixT> out;
  out.reserve(routes_);
  // Iterative DFS carrying the path (bits, depth); child order makes the
  // walk deterministic, and the final sort pins the rebuild input order
  // regardless of insertion history.
  struct Frame {
    std::uint32_t node;
    PrefixT prefix;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, PrefixT{}});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[frame.node];
    if (node.occupied) out.push_back(frame.prefix);
    for (int branch = 1; branch >= 0; --branch) {
      const std::uint32_t child = node.child[branch];
      if (child == 0) continue;
      PrefixT next = frame.prefix;
      if (branch == 1) {
        next.bits = next.bits | (typename PrefixT::Bits{1}
                                 << (PrefixT::kWidth - 1 - next.length));
      }
      next.length = static_cast<std::uint8_t>(next.length + 1);
      stack.push_back(Frame{child, next});
    }
  }
  std::sort(out.begin(), out.end(), [](const PrefixT& a, const PrefixT& b) {
    return a.length != b.length ? a.length < b.length : a.bits < b.bits;
  });
  return out;
}

template <typename PrefixT>
fib::BasicRuleTree<PrefixT> rebuild_fib_from_rib(
    const BasicRibTable<PrefixT>& table) {
  return fib::build_rule_tree(table.prefixes());
}

template class BasicRibTable<fib::Prefix>;
template class BasicRibTable<fib::Prefix6>;
template fib::RuleTree rebuild_fib_from_rib<fib::Prefix>(const RibTable&);
template fib::RuleTree6 rebuild_fib_from_rib<fib::Prefix6>(const RibTable6&);

}  // namespace treecache::rib
