// Certified lower bounds on the offline optimum (Lemmas 5.11 and 5.14).
//
// The exact offline DP (baselines/opt_offline.hpp) is limited to ~16 nodes.
// The paper's analysis, however, yields *instance-specific certificates*
// computable from a TC run's field partition:
//
//   * Lemma 5.11:  Opt(P) >= (size(F)/(4h(T)) − k_P) · α/2   per phase;
//   * Lemma 5.14:  Opt(P) >= (k_P − k_OPT) · α               per finished
//     phase (the derivation inside its proof).
//
// Summing the per-phase maxima gives a sound lower bound on OPT for any
// instance size, which turns measured TC costs into *certified* competitive
// ratios on arbitrarily large inputs (bench E13).
#pragma once

#include <cstdint>

#include "core/field_tracker.hpp"

namespace treecache::analysis {

struct OptBoundConfig {
  std::uint64_t alpha = 2;
  std::size_t k_opt = 1;  // offline cache size assumed by Lemma 5.14
};

/// Lower bound contributed by one phase (max of the two lemma bounds,
/// clamped at 0).
[[nodiscard]] std::uint64_t phase_opt_lower_bound(
    const PhaseFieldSummary& phase, std::uint32_t tree_height,
    const OptBoundConfig& config);

/// Sound lower bound on Opt(I) for the whole instance: the sum over the
/// tracker's phases. Requires a finalized tracker.
[[nodiscard]] std::uint64_t certified_opt_lower_bound(
    const FieldTracker& tracker, std::uint32_t tree_height,
    const OptBoundConfig& config);

}  // namespace treecache::analysis
