#include "analysis/shifting.hpp"

#include <algorithm>
#include <unordered_map>

namespace treecache::analysis {

namespace {

/// Per-member shifting state: the window start and the (sorted) rounds of
/// the requests currently placed at the node.
struct MemberState {
  std::uint64_t from_round = 0;
  std::vector<std::uint64_t> rounds;
};

std::unordered_map<NodeId, MemberState> index_members(
    const Field& field, const std::vector<FieldTracker::Slot>& slots) {
  std::unordered_map<NodeId, MemberState> state;
  state.reserve(field.members.size());
  for (const FieldMember& m : field.members) {
    state[m.node].from_round = m.from_round;
  }
  for (const auto& slot : slots) {
    const auto it = state.find(slot.node);
    TC_CHECK(it != state.end(), "slot outside the field's members");
    it->second.rounds.push_back(slot.round);
  }
  for (auto& [node, member] : state) {
    std::sort(member.rounds.begin(), member.rounds.end());
  }
  return state;
}

std::vector<PlacedRequest> collect_placement(
    const std::unordered_map<NodeId, MemberState>& state) {
  std::vector<PlacedRequest> placement;
  for (const auto& [node, member] : state) {
    for (const std::uint64_t round : member.rounds) {
      placement.push_back(PlacedRequest{node, round});
    }
  }
  std::sort(placement.begin(), placement.end(),
            [](const PlacedRequest& a, const PlacedRequest& b) {
              return a.round != b.round ? a.round < b.round
                                        : a.node < b.node;
            });
  return placement;
}

}  // namespace

NegativeShiftResult shift_negative_field_up(
    const Tree& tree, const Field& field,
    const std::vector<FieldTracker::Slot>& slots, std::uint64_t alpha) {
  TC_CHECK(field.kind == ChangeKind::kEvict, "not a negative field");
  auto state = index_members(field, slots);

  // The field's member set X is a tree cap: every member except one (the
  // cap root) has its parent in X. Process leaves of the remaining cap Y
  // first (Lemma 5.7's induction): keep the α chronologically-first
  // requests at the leaf and push the rest to its parent.
  std::unordered_map<NodeId, std::size_t> pending_children;
  NodeId cap_root = kNoNode;
  for (const FieldMember& m : field.members) {
    pending_children.try_emplace(m.node, 0);
  }
  for (const FieldMember& m : field.members) {
    const NodeId p = tree.parent(m.node);
    if (p != kNoNode && state.contains(p)) {
      ++pending_children[p];
    } else {
      TC_CHECK(cap_root == kNoNode, "field members are not a single cap");
      cap_root = m.node;
    }
  }
  TC_CHECK(cap_root != kNoNode, "cap root not found");

  NegativeShiftResult result;
  std::vector<NodeId> ready;
  for (const auto& [node, count] : pending_children) {
    if (count == 0) ready.push_back(node);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    ++processed;
    MemberState& member = state.at(v);
    // Corollary 5.6(2) guarantees at least α requests at any cap leaf once
    // its descendants' surpluses were pushed up.
    TC_CHECK(member.rounds.size() >= alpha,
             "cap leaf holds fewer than alpha requests (Cor. 5.6)");
    if (v != cap_root) {
      const NodeId p = tree.parent(v);
      MemberState& parent = state.at(p);
      // Move the chronologically-last surplus up; Lemma 5.7 shows these
      // requests arrive while the parent is already in its field window.
      for (std::size_t i = alpha; i < member.rounds.size(); ++i) {
        const std::uint64_t round = member.rounds[i];
        TC_CHECK(round >= parent.from_round,
                 "shifted request would leave the field (Lemma 5.7)");
        parent.rounds.push_back(round);
        ++result.moved;
      }
      member.rounds.resize(alpha);
      std::sort(parent.rounds.begin(), parent.rounds.end());
      if (--pending_children[p] == 0) ready.push_back(p);
    } else {
      TC_CHECK(member.rounds.size() == alpha,
               "cap root must end with exactly alpha requests");
    }
  }
  TC_CHECK(processed == field.members.size(), "cap traversal incomplete");

  for (const auto& [node, member] : state) {
    TC_CHECK(member.rounds.size() == alpha,
             "Corollary 5.8 postcondition violated");
  }
  result.placement = collect_placement(state);
  TC_CHECK(result.placement.size() == field.requests,
           "shifting must conserve requests");
  return result;
}

PositiveShiftResult shift_positive_field_down(
    const Tree& tree, const Field& field,
    const std::vector<FieldTracker::Slot>& slots, std::uint64_t alpha) {
  TC_CHECK(field.kind == ChangeKind::kFetch, "not a positive field");
  TC_CHECK(alpha % 2 == 0, "Lemma 5.10 assumes an even alpha");
  const std::uint64_t half = alpha / 2;
  auto state = index_members(field, slots);

  // Partition the members into layers by root distance and pick the layer
  // carrying the most half-α groups (pigeonhole: >= |X|/h groups).
  std::unordered_map<NodeId, std::size_t> groups;
  std::uint64_t total_groups = 0;
  std::vector<std::vector<NodeId>> layers(tree.height());
  for (const FieldMember& m : field.members) {
    const std::size_t g = state.at(m.node).rounds.size() / half;
    groups[m.node] = g;
    total_groups += g;
    layers[tree.depth(m.node)].push_back(m.node);
  }
  TC_CHECK(total_groups >= field.members.size(),
           "fewer than |X| groups despite req(F) = |X| alpha");
  std::size_t best_layer = 0;
  std::uint64_t best_groups = 0;
  for (std::size_t d = 0; d < layers.size(); ++d) {
    std::uint64_t layer_groups = 0;
    for (const NodeId v : layers[d]) layer_groups += groups[v];
    if (layer_groups > best_groups) {
      best_groups = layer_groups;
      best_layer = d;
    }
  }

  PositiveShiftResult result;
  // Lemma 5.9 per layer node: order the members of T(v) ∩ X by their
  // window start (earlier = evicted earlier = will be refetched deeper in
  // the cap), ties broken by depth (closer to v first); the j-th gets the
  // j-th block of α/2 requests.
  for (const NodeId v : layers[best_layer]) {
    const std::size_t c = groups[v];
    if (c == 0) continue;
    std::vector<NodeId> targets;
    for (const FieldMember& m : field.members) {
      if (tree.is_ancestor_or_self(v, m.node)) targets.push_back(m.node);
    }
    std::sort(targets.begin(), targets.end(), [&](NodeId a, NodeId b) {
      const auto fa = state.at(a).from_round;
      const auto fb = state.at(b).from_round;
      if (fa != fb) return fa < fb;
      return tree.depth(a) < tree.depth(b);
    });
    TC_CHECK(!targets.empty() && targets.front() == v,
             "v must be its own first target (earliest window)");
    const std::size_t blocks = (c + 1) / 2;  // ⌈c/2⌉
    TC_CHECK(blocks <= targets.size(),
             "not enough targets for the blocks (Lemma 5.5(2))");
    const std::vector<std::uint64_t> rounds = state.at(v).rounds;
    std::vector<std::uint64_t> keep(rounds.begin(),
                                    rounds.begin() +
                                        static_cast<std::ptrdiff_t>(half));
    // Block j (1-based) covers chronological requests
    // (j-1)*alpha + 1 .. (j-1)*alpha + alpha/2.
    for (std::size_t j = 2; j <= blocks; ++j) {
      const std::size_t begin = (j - 1) * alpha;  // 0-based index
      MemberState& target = state.at(targets[j - 1]);
      for (std::size_t i = 0; i < half; ++i) {
        const std::uint64_t round = rounds[begin + i];
        TC_CHECK(round >= target.from_round,
                 "down-shifted request would leave the field (Lemma 5.9)");
        target.rounds.push_back(round);
        ++result.moved;
      }
    }
    // v keeps everything not assigned to deeper targets.
    std::vector<std::uint64_t> remaining = keep;
    for (std::size_t i = half; i < rounds.size(); ++i) {
      const std::size_t block = i / alpha + 1;
      const bool shipped = block >= 2 && block <= blocks &&
                           (i % alpha) < half;
      if (!shipped) remaining.push_back(rounds[i]);
    }
    state.at(v).rounds = std::move(remaining);
  }
  for (auto& [node, member] : state) {
    std::sort(member.rounds.begin(), member.rounds.end());
    if (member.rounds.size() >= half) ++result.full_members;
  }

  // Lemma 5.10 postcondition: at least size(F) / (2h) members are full.
  const std::size_t required =
      (field.members.size() + 2 * tree.height() - 1) / (2 * tree.height());
  TC_CHECK(result.full_members >= required,
           "Lemma 5.10 postcondition violated");
  result.placement = collect_placement(state);
  TC_CHECK(result.placement.size() == field.requests,
           "shifting must conserve requests");
  return result;
}

}  // namespace treecache::analysis
