// Request shifting (Section 5.2) — the core machinery of the paper's
// competitive analysis, implemented as executable procedures with their
// postconditions checked.
//
// The analysis transforms a phase's requests by *legal shifts* (positive
// requests move down the tree, negative requests move up, always inside
// their field), producing an input that is no harder for OPT but (almost)
// evenly distributed:
//
//   * Corollary 5.8: within a negative field the requests can be shifted UP
//     so every member holds exactly α of them.
//   * Lemmas 5.9/5.10: within a positive field the requests can be shifted
//     DOWN so at least size(F)/(2h(T)) members hold at least α/2 each —
//     and by Appendix D (see workload/gadget.hpp) this is essentially the
//     best possible.
//
// Each procedure throws CheckFailure if any step the paper's proof relies
// on fails (a shifted request leaving the field, a missing shift target,
// a count mismatch) — running them over real TC executions is a direct
// machine check of Lemmas 5.5–5.10.
#pragma once

#include <cstdint>
#include <vector>

#include "core/field_tracker.hpp"
#include "tree/tree.hpp"

namespace treecache::analysis {

/// One request placement after shifting.
struct PlacedRequest {
  NodeId node;
  std::uint64_t round;
};

struct NegativeShiftResult {
  std::vector<PlacedRequest> placement;  // exactly α per field member
  std::size_t moved = 0;                 // requests that changed node
};

/// Corollary 5.8: shifts a negative field's requests up so that every
/// member ends with exactly α requests. `slots` must be the field's slots
/// (FieldTracker::field_slots). Verifies legality (only upward moves, the
/// target slot stays within the field) and the exact-α postcondition.
[[nodiscard]] NegativeShiftResult shift_negative_field_up(
    const Tree& tree, const Field& field,
    const std::vector<FieldTracker::Slot>& slots, std::uint64_t alpha);

struct PositiveShiftResult {
  std::vector<PlacedRequest> placement;
  std::size_t moved = 0;
  /// Members holding at least α/2 requests after shifting; guaranteed to
  /// be at least size(F) / (2 h(T)).
  std::size_t full_members = 0;
};

/// Lemma 5.10: shifts a positive field's requests down so that at least
/// size(F)/(2h) members hold at least α/2 requests each. Requires α even
/// (the paper's standing assumption). Verifies legality and the bound.
[[nodiscard]] PositiveShiftResult shift_positive_field_down(
    const Tree& tree, const Field& field,
    const std::vector<FieldTracker::Slot>& slots, std::uint64_t alpha);

}  // namespace treecache::analysis
