#include "analysis/opt_bound.hpp"

#include <algorithm>

namespace treecache::analysis {

std::uint64_t phase_opt_lower_bound(const PhaseFieldSummary& phase,
                                    std::uint32_t tree_height,
                                    const OptBoundConfig& config) {
  TC_CHECK(tree_height >= 1, "height must be positive");
  std::uint64_t best = 0;

  // Lemma 5.11: Opt(P) >= (size(F)/(4h) − k_P) · α/2. Integer-safe form:
  // if size(F) > 4h·k_P then (size(F) − 4h·k_P) · α / (8h).
  const std::uint64_t four_h = 4ull * tree_height;
  if (phase.sum_field_sizes > four_h * phase.k_end) {
    const std::uint64_t surplus =
        phase.sum_field_sizes - four_h * phase.k_end;
    best = std::max(best, surplus * config.alpha / (2 * four_h));
  }

  // Lemma 5.14 (inside its proof): Opt(P) >= (k_P − k_OPT) · α for a
  // finished phase.
  if (phase.finished && phase.k_end > config.k_opt) {
    best = std::max(best, (phase.k_end - config.k_opt) * config.alpha);
  }
  return best;
}

std::uint64_t certified_opt_lower_bound(const FieldTracker& tracker,
                                        std::uint32_t tree_height,
                                        const OptBoundConfig& config) {
  std::uint64_t total = 0;
  for (const PhaseFieldSummary& phase : tracker.phases()) {
    total += phase_opt_lower_bound(phase, tree_height, config);
  }
  return total;
}

}  // namespace treecache::analysis
