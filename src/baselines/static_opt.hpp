// Optimal *static* cache for positive-only workloads ("tree sparsity",
// Section 7 of the paper, citing Backurs–Indyk–Schmidt SODA'17).
//
// A static cache is a subforest chosen once, i.e. a union of complete
// subtrees T(r_1) ⊔ ... ⊔ T(r_m) of total size at most k. Given per-node
// positive-request weights, the DP below maximizes the covered weight in
// O(n·k) amortized time (classic tree-knapsack with subtree-size capping).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/trace.hpp"
#include "tree/tree.hpp"

namespace treecache {

struct StaticOptResult {
  /// Total request weight served by the cache.
  std::uint64_t covered_weight = 0;
  /// Roots of the chosen complete subtrees (an antichain).
  std::vector<NodeId> chosen_roots;
  /// Total number of cached nodes (≤ k).
  std::size_t cached_nodes = 0;
};

/// Maximizes Σ_{v cached} weight[v] over subforests with at most `capacity`
/// nodes. weight.size() must equal tree.size().
[[nodiscard]] StaticOptResult best_static_subforest(
    const Tree& tree, std::span<const std::uint64_t> weight,
    std::size_t capacity);

/// Per-node positive-request counts of a trace (the natural weights).
[[nodiscard]] std::vector<std::uint64_t> positive_weights(const Tree& tree,
                                                          const Trace& trace);

/// Cost of running the chosen static cache on a trace: α per fetched node
/// once, plus 1 per positive request outside / negative request inside.
[[nodiscard]] std::uint64_t static_cache_cost(const Tree& tree,
                                              const Trace& trace,
                                              std::uint64_t alpha,
                                              const StaticOptResult& chosen);

/// Brute-force reference over all subforests (tree.size() <= 18).
[[nodiscard]] StaticOptResult best_static_subforest_bruteforce(
    const Tree& tree, std::span<const std::uint64_t> weight,
    std::size_t capacity);

}  // namespace treecache
