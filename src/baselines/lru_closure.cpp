#include "baselines/lru_closure.hpp"

#include <algorithm>
#include <memory>

#include "sim/registry.hpp"

namespace treecache {

LruClosure::LruClosure(const Tree& tree, LruClosureConfig config)
    : tree_(&tree),
      config_(config),
      cache_(tree),
      recency_(tree.size(), 0) {
  TC_CHECK(config_.alpha >= 1, "alpha must be positive");
  TC_CHECK(config_.capacity >= 1, "capacity must be at least 1");
}

void LruClosure::reset() {
  cache_.clear();
  cost_ = Cost{};
  round_ = 0;
  std::fill(recency_.begin(), recency_.end(), std::uint64_t{0});
  changeset_.clear();
  evict_buf_.clear();
  missing_buf_.clear();
  roots_buf_.clear();
}

StepOutcome LruClosure::step(Request request) {
  TC_CHECK(request.node < tree_->size(), "request outside the tree");
  ++round_;
  return request.sign == Sign::kPositive ? handle_positive(request.node)
                                         : handle_negative(request.node);
}

void LruClosure::touch(NodeId v) {
  recency_[cache_.cached_tree_root(v)] = round_;
}

void LruClosure::evict_one_root(NodeId protect) {
  // Evict the least-recently-used maximal root (a valid single-node
  // negative changeset); prefer victims outside T(protect) so an imminent
  // fetch into that subtree does not immediately refetch them. Children of
  // the victim become roots inheriting its recency.
  cache_.maximal_roots(roots_buf_);
  const auto& roots = roots_buf_;
  TC_CHECK(!roots.empty(), "evict_one_root on an empty cache");
  NodeId victim = kNoNode;
  for (const NodeId r : roots) {
    if (tree_->is_ancestor_or_self(protect, r)) continue;
    if (victim == kNoNode || recency_[r] < recency_[victim]) victim = r;
  }
  if (victim == kNoNode) {  // everything cached lives under the protectee
    victim = roots.front();
    for (const NodeId r : roots) {
      if (recency_[r] < recency_[victim]) victim = r;
    }
  }
  for (const NodeId c : tree_->children(victim)) {
    if (cache_.contains(c)) recency_[c] = recency_[victim];
  }
  cache_.erase(victim);
  evict_buf_.push_back(victim);
}

StepOutcome LruClosure::handle_positive(NodeId v) {
  StepOutcome out;
  if (cache_.contains(v)) {
    touch(v);
    return out;  // hit, free
  }
  out.paid = true;
  ++cost_.service;

  // After the fetch the whole T(v) is cached, so the closure can only fit
  // if the full subtree does.
  if (tree_->subtree_size(v) > config_.capacity) return out;  // bypass

  evict_buf_.clear();
  // Evictions can land inside T(v) (growing the missing closure), so the
  // closure is recomputed until the fetch fits. Each eviction shrinks the
  // cache, so this terminates.
  cache_.missing_subtree(v, missing_buf_);
  const auto& missing = missing_buf_;
  while (cache_.size() + missing.size() > config_.capacity) {
    evict_one_root(v);
    cache_.missing_subtree(v, missing_buf_);
  }
  changeset_.clear();
  for (auto it = missing.rbegin(); it != missing.rend(); ++it) {
    cache_.insert(*it);
    changeset_.push_back(*it);
  }
  recency_[cache_.cached_tree_root(v)] = round_;
  cost_.reorg += config_.alpha * (evict_buf_.size() + missing.size());
  out.change = ChangeKind::kFetch;
  out.changed = changeset_;        // the fetched closure
  out.also_evicted = evict_buf_;   // LRU victims that made room
  return out;
}

StepOutcome LruClosure::handle_negative(NodeId v) {
  StepOutcome out;
  if (!cache_.contains(v)) return out;
  out.paid = true;
  ++cost_.service;
  if (!config_.evict_on_negative) return out;

  // Invalidate: evict v together with its cached ancestors. Those are
  // exactly the walk-up prefix v..top (a valid negative changeset: the
  // remaining cache keeps no node above an evicted one).
  changeset_.clear();
  for (NodeId u = v; u != kNoNode && cache_.contains(u);
       u = tree_->parent(u)) {
    changeset_.push_back(u);
  }
  std::reverse(changeset_.begin(), changeset_.end());  // top-down
  const std::uint64_t tree_recency = recency_[changeset_.front()];
  for (const NodeId u : changeset_) cache_.erase(u);
  // Children that stay cached become maximal roots and inherit recency.
  for (const NodeId u : changeset_) {
    for (const NodeId c : tree_->children(u)) {
      if (cache_.contains(c)) recency_[c] = tree_recency;
    }
  }
  cost_.reorg += config_.alpha * changeset_.size();
  out.change = ChangeKind::kEvict;
  out.changed = changeset_;
  return out;
}

namespace {
LruClosureConfig lru_config(const sim::Params& p, bool evict_on_negative) {
  return LruClosureConfig{.alpha = p.alpha(),
                          .capacity = p.capacity(),
                          .evict_on_negative = evict_on_negative};
}

const sim::AlgorithmRegistrar kRegisterLru{
    "lru", "ancestor-closure LRU (fetches root paths, evicts leaf-first)",
    [](const Tree& tree, const sim::Params& p) {
      return std::make_unique<LruClosure>(tree, lru_config(p, false));
    }};

const sim::AlgorithmRegistrar kRegisterLruInv{
    "lruinv",
    "LRU-closure that also evicts on paid negative requests",
    [](const Tree& tree, const sim::Params& p) {
      return std::make_unique<LruClosure>(tree, lru_config(p, true));
    }};
}  // namespace

}  // namespace treecache
