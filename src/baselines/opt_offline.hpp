// Exact offline optimum for online tree caching (small trees).
//
// The offline optimum may reorganize the cache arbitrarily after every round
// at α per changed node, subject to the subforest and capacity constraints
// on the end-of-round cache. States are bitmasks over nodes; the per-round
// transition dp'[s'] = min_s dp[s] + α·|s Δ s'| is computed exactly with one
// relaxation pass per bit over the whole hypercube (intermediate masks may
// be invalid — only end-of-round caches are constrained by the model).
//
// OPT is allowed a free choice of initial cache (paying α per fetched node
// before round 1), which can only strengthen it; measured competitive
// ratios are therefore conservative.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"
#include "tree/tree.hpp"

namespace treecache {

struct OptOfflineConfig {
  std::uint64_t alpha = 2;
  std::size_t capacity = 4;  // k_OPT
};

/// Exact minimum total cost over all offline strategies. Requires
/// tree.size() <= 20 (the DP is Θ(rounds · n · 2^n)).
[[nodiscard]] std::uint64_t opt_offline_cost(const Tree& tree,
                                             const Trace& trace,
                                             const OptOfflineConfig& config);

/// Brute-force reference: tries every sequence of valid cache states (one
/// per round boundary). Exponential in rounds·states — only for cross
/// checking the DP on trivially small instances (n <= 6, rounds <= 6).
[[nodiscard]] std::uint64_t opt_offline_cost_bruteforce(
    const Tree& tree, const Trace& trace, const OptOfflineConfig& config);

}  // namespace treecache
