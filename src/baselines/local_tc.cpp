#include "baselines/local_tc.hpp"

#include <algorithm>
#include <memory>

#include "sim/registry.hpp"

namespace treecache {

LocalTc::LocalTc(const Tree& tree, LocalTcConfig config)
    : tree_(&tree), config_(config), cache_(tree), cnt_(tree.size(), 0) {
  TC_CHECK(config_.alpha >= 1, "alpha must be positive");
  TC_CHECK(config_.capacity >= 1, "capacity must be at least 1");
}

void LocalTc::reset() {
  cache_.clear();
  cost_ = Cost{};
  std::fill(cnt_.begin(), cnt_.end(), std::uint64_t{0});
  changeset_.clear();
  missing_buf_.clear();
}

StepOutcome LocalTc::step(Request request) {
  TC_CHECK(request.node < tree_->size(), "request outside the tree");
  return request.sign == Sign::kPositive ? handle_positive(request.node)
                                         : handle_negative(request.node);
}

StepOutcome LocalTc::handle_positive(NodeId v) {
  StepOutcome out;
  if (cache_.contains(v)) return out;
  out.paid = true;
  ++cost_.service;
  ++cnt_[v];

  cache_.missing_subtree(v, missing_buf_);
  const auto& missing = missing_buf_;
  if (cnt_[v] < missing.size() * config_.alpha) return out;

  if (cache_.size() + missing.size() > config_.capacity) {
    // Restart: evict everything, reset all counters.
    cache_.as_vector(changeset_);
    std::sort(changeset_.begin(), changeset_.end(), [&](NodeId a, NodeId b) {
      return tree_->depth(a) < tree_->depth(b);
    });
    for (const NodeId x : changeset_) cache_.erase(x);
    cost_.reorg += config_.alpha * changeset_.size();
    std::fill(cnt_.begin(), cnt_.end(), std::uint64_t{0});
    out.change = ChangeKind::kPhaseRestart;
    out.aborted_fetch_size = static_cast<std::uint32_t>(missing.size());
    out.changed = changeset_;
    return out;
  }

  changeset_.assign(missing.begin(), missing.end());
  for (auto it = changeset_.rbegin(); it != changeset_.rend(); ++it) {
    cache_.insert(*it);
    cnt_[*it] = 0;
  }
  cost_.reorg += config_.alpha * changeset_.size();
  out.change = ChangeKind::kFetch;
  out.changed = changeset_;
  return out;
}

StepOutcome LocalTc::handle_negative(NodeId v) {
  StepOutcome out;
  if (!cache_.contains(v)) return out;
  out.paid = true;
  ++cost_.service;
  ++cnt_[v];

  // The minimal eviction containing v: v plus its cached ancestors.
  std::size_t cap_size = 0;
  for (NodeId u = v; u != kNoNode && cache_.contains(u);
       u = tree_->parent(u)) {
    ++cap_size;
  }
  if (cnt_[v] < cap_size * config_.alpha) return out;

  changeset_.clear();
  for (NodeId u = v; u != kNoNode && cache_.contains(u);
       u = tree_->parent(u)) {
    changeset_.push_back(u);
  }
  std::reverse(changeset_.begin(), changeset_.end());
  for (const NodeId u : changeset_) {
    cache_.erase(u);
    cnt_[u] = 0;
  }
  cost_.reorg += config_.alpha * changeset_.size();
  out.change = ChangeKind::kEvict;
  out.changed = changeset_;
  return out;
}

namespace {
const sim::AlgorithmRegistrar kRegisterLocal{
    "local",
    "greedy single-node variant of TC (no changeset saturation)",
    [](const Tree& tree, const sim::Params& p) {
      return std::make_unique<LocalTc>(
          tree,
          LocalTcConfig{.alpha = p.alpha(), .capacity = p.capacity()});
    }};
}  // namespace

}  // namespace treecache
