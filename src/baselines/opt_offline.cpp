#include "baselines/opt_offline.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "sim/registry.hpp"

namespace treecache {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max() / 4;

/// valid[mask] ⇔ the mask is descendant-closed (a subforest of the tree).
std::vector<std::uint8_t> compute_valid_masks(const Tree& tree) {
  const std::size_t n = tree.size();
  const std::size_t count = std::size_t{1} << n;
  std::vector<std::uint8_t> valid(count, 1);
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    for (NodeId v = 0; v < n && valid[mask]; ++v) {
      if (!(mask >> v & 1)) continue;
      for (const NodeId c : tree.children(v)) {
        if (!(mask >> c & 1)) {
          valid[mask] = 0;
          break;
        }
      }
    }
  }
  return valid;
}

std::uint64_t service_charge(const Request& r, std::uint64_t mask) {
  const bool cached = (mask >> r.node) & 1;
  return (r.sign == Sign::kPositive) ? (cached ? 0 : 1) : (cached ? 1 : 0);
}

}  // namespace

std::uint64_t opt_offline_cost(const Tree& tree, const Trace& trace,
                               const OptOfflineConfig& config) {
  const std::size_t n = tree.size();
  TC_CHECK(n <= 20, "exact OPT supports at most 20 nodes");
  TC_CHECK(config.alpha >= 1, "alpha must be positive");
  const std::size_t count = std::size_t{1} << n;
  const auto valid = compute_valid_masks(tree);

  auto feasible = [&](std::uint64_t mask) {
    return valid[mask] &&
           static_cast<std::size_t>(std::popcount(mask)) <= config.capacity;
  };

  // Free choice of initial cache (paid at alpha per node).
  std::vector<std::uint64_t> dp(count, kInf);
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    if (feasible(mask)) {
      dp[mask] =
          config.alpha * static_cast<std::uint64_t>(std::popcount(mask));
    }
  }

  std::vector<std::uint64_t> relax(count);
  for (const Request& r : trace) {
    // 1) Serve the request in the current state.
    for (std::uint64_t mask = 0; mask < count; ++mask) {
      if (dp[mask] < kInf) dp[mask] += service_charge(r, mask);
    }
    // 2) Reorganize: exact min-plus with the α·Hamming metric. One pass per
    //    bit computes min_s dp[s] + α·|s Δ s'| for every s'.
    relax = dp;
    for (std::size_t b = 0; b < n; ++b) {
      const std::uint64_t bit = std::uint64_t{1} << b;
      for (std::uint64_t mask = 0; mask < count; ++mask) {
        const std::uint64_t other = relax[mask ^ bit] + config.alpha;
        if (other < relax[mask]) relax[mask] = other;
      }
    }
    // 3) End-of-round caches must be feasible.
    for (std::uint64_t mask = 0; mask < count; ++mask) {
      dp[mask] = feasible(mask) ? relax[mask] : kInf;
    }
  }
  return *std::min_element(dp.begin(), dp.end());
}

namespace {
std::uint64_t brute(const Tree& tree, const Trace& trace,
                    const OptOfflineConfig& config, std::size_t round,
                    std::uint64_t mask,
                    const std::vector<std::uint64_t>& states) {
  if (round == trace.size()) return 0;
  const std::uint64_t serve = service_charge(trace[round], mask);
  std::uint64_t best = kInf;
  for (const std::uint64_t next : states) {
    const auto moved = static_cast<std::uint64_t>(std::popcount(mask ^ next));
    const std::uint64_t tail =
        brute(tree, trace, config, round + 1, next, states);
    best = std::min(best, config.alpha * moved + tail);
  }
  return serve + best;
}
}  // namespace

std::uint64_t opt_offline_cost_bruteforce(const Tree& tree, const Trace& trace,
                                          const OptOfflineConfig& config) {
  const std::size_t n = tree.size();
  TC_CHECK(n <= 6 && trace.size() <= 6,
           "brute force limited to tiny instances");
  const auto valid = compute_valid_masks(tree);
  std::vector<std::uint64_t> states;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (valid[mask] &&
        static_cast<std::size_t>(std::popcount(mask)) <= config.capacity) {
      states.push_back(mask);
    }
  }
  std::uint64_t best = kInf;
  for (const std::uint64_t start : states) {
    const auto fetch =
        config.alpha * static_cast<std::uint64_t>(std::popcount(start));
    best = std::min(best,
                    fetch + brute(tree, trace, config, 0, start, states));
  }
  return best;
}

namespace {
const sim::OfflineEvaluatorRegistrar kRegisterOpt{
    "opt", "exact offline optimum (bitmask DP, tree.size() <= 20)",
    [](const Tree& tree, const Trace& trace, const sim::Params& p) {
      return opt_offline_cost(tree, trace,
                              OptOfflineConfig{.alpha = p.alpha(),
                                               .capacity = p.capacity()});
    }};
}  // namespace

}  // namespace treecache
