#include "baselines/never_cache.hpp"

#include <memory>

#include "sim/registry.hpp"

namespace treecache {
namespace {

const sim::AlgorithmRegistrar kRegisterNone{
    "none", "empty-cache baseline: pays 1 per positive request",
    [](const Tree& tree, const sim::Params&) {
      return std::make_unique<NeverCache>(tree);
    }};

}  // namespace
}  // namespace treecache
