// Dependency-aware fetch-on-miss LRU — the CacheFlow-style baseline.
//
// On a positive miss at v the whole missing subtree P(v) (v's "dependent
// set") is fetched, evicting least-recently-used cache-tree roots one node
// at a time until the fetch fits. Evicting a maximal root alone is always a
// valid negative changeset, so the cache stays a subforest without the
// rent-or-buy counters of TC. Negative requests cost 1 when the node is
// cached and optionally evict the node (with its cached ancestors).
//
// This baseline has no worst-case guarantee — the E12 ablation bench
// quantifies how badly fetch-on-miss behaves when α is large and how well
// it does on friendly Zipf traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/online_algorithm.hpp"
#include "tree/tree.hpp"

namespace treecache {

struct LruClosureConfig {
  std::uint64_t alpha = 2;
  std::size_t capacity = 16;
  /// If true, a paid negative request evicts the node and its cached
  /// ancestors (treat updates as invalidations).
  bool evict_on_negative = false;
};

class LruClosure final : public OnlineAlgorithm {
 public:
  LruClosure(const Tree& tree, LruClosureConfig config);

  [[nodiscard]] std::string_view name() const override {
    return config_.evict_on_negative ? "LRU-closure-inv" : "LRU-closure";
  }
  StepOutcome step(Request request) override;
  void reset() override;
  [[nodiscard]] const Subforest& cache() const override { return cache_; }
  [[nodiscard]] const Cost& cost() const override { return cost_; }

 private:
  StepOutcome handle_positive(NodeId v);
  StepOutcome handle_negative(NodeId v);

  /// Evicts one least-recently-used maximal root (appended to evict_buf_),
  /// preferring victims outside T(protect).
  void evict_one_root(NodeId protect);

  /// Recency of the maximal cached tree containing v is refreshed to the
  /// current round (walk to the root, O(h)).
  void touch(NodeId v);

  const Tree* tree_;
  LruClosureConfig config_;
  Subforest cache_;
  Cost cost_;
  std::uint64_t round_ = 0;
  std::vector<std::uint64_t> recency_;  // per maximal root; 0 = unused
  std::vector<NodeId> changeset_;
  std::vector<NodeId> evict_buf_;
  std::vector<NodeId> missing_buf_;  // reused P(v) buffer
  std::vector<NodeId> roots_buf_;    // reused maximal-roots buffer
};

}  // namespace treecache
