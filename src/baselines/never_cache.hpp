// Trivial baseline: never caches anything; every positive request is paid.
// Its cost equals the number of positive requests — the "no router cache"
// floor in the FIB experiments.
#pragma once

#include "core/online_algorithm.hpp"
#include "tree/tree.hpp"

namespace treecache {

class NeverCache final : public OnlineAlgorithm {
 public:
  explicit NeverCache(const Tree& tree) : cache_(tree) {}

  [[nodiscard]] std::string_view name() const override { return "NoCache"; }

  StepOutcome step(Request request) override {
    TC_CHECK(request.node < cache_.tree().size(), "request outside the tree");
    StepOutcome out;
    if (request.sign == Sign::kPositive) {
      out.paid = true;
      ++cost_.service;
    }
    return out;
  }

  void reset() override { cost_ = Cost{}; }
  [[nodiscard]] const Subforest& cache() const override { return cache_; }
  [[nodiscard]] const Cost& cost() const override { return cost_; }

 private:
  Subforest cache_;
  Cost cost_;
};

}  // namespace treecache
