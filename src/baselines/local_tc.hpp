// Ablation baseline: TC without the aggregate saturation / maximality scan.
//
// LocalTC keeps the same per-node rent-or-buy counters as TC but makes
// purely local decisions:
//  * a positive miss at v fetches P_t(v) once v's OWN counter has paid for
//    the whole set (cnt(v) >= |P_t(v)|·α) — counters of v's relatives never
//    help, and no ancestor candidate is ever considered;
//  * a paid negative request at v evicts v and its cached ancestors once
//    cnt(v) >= (1 + #cached ancestors)·α;
//  * a fetch that does not fit evicts the whole cache (phase-like restart).
//
// Comparing LocalTC against TC (bench E12) isolates the value of the
// paper's two aggregation mechanisms: counting requests across whole
// candidate changesets and choosing maximal saturated sets.
#pragma once

#include <cstdint>
#include <vector>

#include "core/online_algorithm.hpp"
#include "tree/tree.hpp"

namespace treecache {

struct LocalTcConfig {
  std::uint64_t alpha = 2;
  std::size_t capacity = 16;
};

class LocalTc final : public OnlineAlgorithm {
 public:
  LocalTc(const Tree& tree, LocalTcConfig config);

  [[nodiscard]] std::string_view name() const override { return "LocalTC"; }
  StepOutcome step(Request request) override;
  void reset() override;
  [[nodiscard]] const Subforest& cache() const override { return cache_; }
  [[nodiscard]] const Cost& cost() const override { return cost_; }

 private:
  StepOutcome handle_positive(NodeId v);
  StepOutcome handle_negative(NodeId v);

  const Tree* tree_;
  LocalTcConfig config_;
  Subforest cache_;
  Cost cost_;
  std::vector<std::uint64_t> cnt_;
  std::vector<NodeId> changeset_;
  std::vector<NodeId> missing_buf_;  // reused P_t(v) buffer
};

}  // namespace treecache
