#include "baselines/paging.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "sim/registry.hpp"

namespace treecache {

bool LruPaging::access(PageId page) {
  const auto it = position_.find(page);
  if (it != position_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return false;
  }
  ++faults_;
  if (order_.size() == k_) {
    position_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(page);
  position_[page] = order_.begin();
  return true;
}

void LruPaging::reset() {
  order_.clear();
  position_.clear();
  faults_ = 0;
}

bool FifoPaging::access(PageId page) {
  if (cached(page)) return false;
  ++faults_;
  if (queue_.size() == k_) queue_.pop_front();
  queue_.push_back(page);
  return true;
}

void FifoPaging::reset() {
  queue_.clear();
  faults_ = 0;
}

bool FwfPaging::access(PageId page) {
  if (cached(page)) return false;
  ++faults_;
  if (cache_.size() == k_) cache_.clear();
  cache_.push_back(page);
  return true;
}

void FwfPaging::reset() {
  cache_.clear();
  faults_ = 0;
}

std::uint64_t belady_faults(const std::vector<PageId>& sequence,
                            std::size_t k) {
  TC_CHECK(k >= 1, "k >= 1");
  const std::size_t n = sequence.size();
  // next_use[i]: index of the next occurrence of sequence[i] after i.
  std::vector<std::size_t> next_use(n, n);
  std::unordered_map<PageId, std::size_t> upcoming;
  for (std::size_t i = n; i-- > 0;) {
    const auto it = upcoming.find(sequence[i]);
    next_use[i] = (it == upcoming.end()) ? n + i : it->second;
    upcoming[sequence[i]] = i;
  }

  std::uint64_t faults = 0;
  // cache as a set of (next_use, page), max next_use evicted first.
  std::set<std::pair<std::size_t, PageId>> by_next_use;
  std::unordered_map<PageId, std::size_t> cached_next;
  for (std::size_t i = 0; i < n; ++i) {
    const PageId page = sequence[i];
    const auto it = cached_next.find(page);
    if (it != cached_next.end()) {
      by_next_use.erase({it->second, page});
    } else {
      ++faults;
      if (cached_next.size() == k) {
        const auto victim = std::prev(by_next_use.end());
        cached_next.erase(victim->second);
        by_next_use.erase(victim);
      }
    }
    cached_next[page] = next_use[i];
    by_next_use.insert({next_use[i], page});
  }
  return faults;
}

namespace {
const sim::PagingRegistrar kRegisterLruPaging{
    "lru", "least-recently-used",
    [](std::size_t k) { return std::make_unique<LruPaging>(k); }};
const sim::PagingRegistrar kRegisterFifoPaging{
    "fifo", "first-in-first-out",
    [](std::size_t k) { return std::make_unique<FifoPaging>(k); }};
const sim::PagingRegistrar kRegisterFwfPaging{
    "fwf", "flush-when-full",
    [](std::size_t k) { return std::make_unique<FwfPaging>(k); }};
}  // namespace

}  // namespace treecache
