#include "baselines/static_opt.hpp"

#include <algorithm>
#include <bit>

#include "sim/registry.hpp"

namespace treecache {

namespace {

/// DP table entry per node: best[j] = max weight using at most j cached
/// nodes within T(v), for j = 0..min(k, |T(v)|).
using Profile = std::vector<std::uint64_t>;

struct DpState {
  const Tree* tree;
  std::span<const std::uint64_t> weight;
  std::size_t capacity;
  std::vector<Profile> profile;          // per node
  std::vector<std::uint64_t> subtree_w;  // Σ weight over T(v)
};

/// Bottom-up computation over reverse preorder (children before parents).
void compute_profiles(DpState& dp) {
  const Tree& tree = *dp.tree;
  dp.profile.assign(tree.size(), {});
  dp.subtree_w.assign(tree.size(), 0);
  for (const NodeId v : tree.postorder()) {
    dp.subtree_w[v] = dp.weight[v];
    for (const NodeId c : tree.children(v)) {
      dp.subtree_w[v] += dp.subtree_w[c];
    }
    const std::size_t cap =
        std::min<std::size_t>(dp.capacity, tree.subtree_size(v));
    // Knapsack over children: selections inside T(v) that do NOT take v are
    // unions of selections in the children's subtrees.
    Profile knap(cap + 1, 0);
    std::size_t merged = 0;  // combined size bound of processed children
    for (const NodeId c : tree.children(v)) {
      const Profile& child = dp.profile[c];
      const std::size_t child_cap = child.size() - 1;
      const std::size_t new_merged = std::min(cap, merged + child_cap);
      Profile next(new_merged + 1, 0);
      for (std::size_t a = 0; a <= merged; ++a) {
        for (std::size_t b = 0; b <= child_cap && a + b <= new_merged; ++b) {
          next[a + b] = std::max(next[a + b], knap[a] + child[b]);
        }
      }
      // Profiles are "budget at most j": make the merge monotone.
      for (std::size_t j = 1; j <= new_merged; ++j) {
        next[j] = std::max(next[j], next[j - 1]);
      }
      knap.assign(next.begin(), next.end());
      knap.resize(cap + 1, next.back());
      merged = new_merged;
    }
    // Taking v forces the whole subtree.
    Profile& prof = dp.profile[v];
    prof.assign(cap + 1, 0);
    for (std::size_t j = 0; j <= cap; ++j) {
      prof[j] = knap[std::min(j, merged)];
      if (j >= tree.subtree_size(v)) {
        prof[j] = std::max(prof[j], dp.subtree_w[v]);
      }
    }
    // Enforce monotonicity in the budget.
    for (std::size_t j = 1; j <= cap; ++j) {
      prof[j] = std::max(prof[j], prof[j - 1]);
    }
  }
}

/// Walks the DP decisions to recover the chosen antichain of subtree roots.
void reconstruct(const DpState& dp, NodeId v, std::size_t budget,
                 std::vector<NodeId>& roots) {
  const Tree& tree = *dp.tree;
  const std::size_t cap = dp.profile[v].size() - 1;
  const std::size_t j = std::min(budget, cap);
  const std::uint64_t target = dp.profile[v][j];
  if (target == 0) return;
  if (j >= tree.subtree_size(v) && target == dp.subtree_w[v]) {
    roots.push_back(v);
    return;
  }
  // Distribute the budget over children to reproduce the knapsack value.
  // Greedy re-derivation: process children in order, for each pick the
  // smallest budget share that, combined with the best achievable from the
  // remaining children, still attains the target.
  const auto kids = tree.children(v);
  // suffix_best[i][b]: best weight from children i.. with budget b.
  const std::size_t m = kids.size();
  std::vector<Profile> suffix(m + 1, Profile(j + 1, 0));
  for (std::size_t i = m; i-- > 0;) {
    const Profile& child = dp.profile[kids[i]];
    const std::size_t child_cap = child.size() - 1;
    for (std::size_t b = 0; b <= j; ++b) {
      std::uint64_t best = 0;
      for (std::size_t share = 0; share <= std::min(b, child_cap); ++share) {
        best = std::max(best, child[share] + suffix[i + 1][b - share]);
      }
      suffix[i][b] = best;
    }
  }
  std::size_t remaining = j;
  for (std::size_t i = 0; i < m; ++i) {
    const Profile& child = dp.profile[kids[i]];
    const std::size_t child_cap = child.size() - 1;
    for (std::size_t share = 0; share <= std::min(remaining, child_cap);
         ++share) {
      if (child[share] + suffix[i + 1][remaining - share] ==
          suffix[i][remaining]) {
        reconstruct(dp, kids[i], share, roots);
        remaining -= share;
        break;
      }
    }
  }
}

}  // namespace

StaticOptResult best_static_subforest(const Tree& tree,
                                      std::span<const std::uint64_t> weight,
                                      std::size_t capacity) {
  TC_CHECK(weight.size() == tree.size(), "one weight per node required");
  DpState dp{&tree, weight, capacity, {}, {}};
  compute_profiles(dp);

  StaticOptResult result;
  const std::size_t root_cap = dp.profile[tree.root()].size() - 1;
  result.covered_weight = dp.profile[tree.root()][root_cap];
  reconstruct(dp, tree.root(), capacity, result.chosen_roots);
  for (const NodeId r : result.chosen_roots) {
    result.cached_nodes += tree.subtree_size(r);
  }
  TC_CHECK(result.cached_nodes <= capacity, "reconstruction over budget");
  // Cross-check the reconstruction reproduces the DP value.
  std::uint64_t recovered = 0;
  for (const NodeId r : result.chosen_roots) recovered += dp.subtree_w[r];
  TC_CHECK(recovered == result.covered_weight,
           "reconstruction does not match the DP optimum");
  return result;
}

std::vector<std::uint64_t> positive_weights(const Tree& tree,
                                            const Trace& trace) {
  std::vector<std::uint64_t> weight(tree.size(), 0);
  for (const Request& r : trace) {
    TC_CHECK(r.node < tree.size(), "request outside the tree");
    if (r.sign == Sign::kPositive) ++weight[r.node];
  }
  return weight;
}

std::uint64_t static_cache_cost(const Tree& tree, const Trace& trace,
                                std::uint64_t alpha,
                                const StaticOptResult& chosen) {
  std::vector<std::uint8_t> cached(tree.size(), 0);
  for (const NodeId r : chosen.chosen_roots) {
    std::vector<NodeId> stack{r};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      cached[v] = 1;
      for (const NodeId c : tree.children(v)) stack.push_back(c);
    }
  }
  std::uint64_t cost = alpha * chosen.cached_nodes;
  for (const Request& r : trace) {
    const bool pays = r.sign == Sign::kPositive ? !cached[r.node]
                                                : static_cast<bool>(cached[r.node]);
    if (pays) ++cost;
  }
  return cost;
}

StaticOptResult best_static_subforest_bruteforce(
    const Tree& tree, std::span<const std::uint64_t> weight,
    std::size_t capacity) {
  const std::size_t n = tree.size();
  TC_CHECK(n <= 18, "brute force limited to 18 nodes");
  StaticOptResult best;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) > capacity) continue;
    bool valid = true;
    std::uint64_t value = 0;
    for (NodeId v = 0; v < n && valid; ++v) {
      if (!(mask >> v & 1)) continue;
      value += weight[v];
      for (const NodeId c : tree.children(v)) {
        if (!(mask >> c & 1)) {
          valid = false;
          break;
        }
      }
    }
    if (valid && value > best.covered_weight) {
      best.covered_weight = value;
      best.cached_nodes = static_cast<std::size_t>(std::popcount(mask));
      best.chosen_roots.clear();
      for (NodeId v = 0; v < n; ++v) {
        if ((mask >> v & 1) &&
            (tree.parent(v) == kNoNode || !(mask >> tree.parent(v) & 1))) {
          best.chosen_roots.push_back(v);
        }
      }
    }
  }
  return best;
}

namespace {
const sim::OfflineEvaluatorRegistrar kRegisterStatic{
    "static",
    "optimal static subforest (tree-knapsack DP) evaluated on the trace",
    [](const Tree& tree, const Trace& trace, const sim::Params& p) {
      const auto weights = positive_weights(tree, trace);
      const auto chosen =
          best_static_subforest(tree, weights, p.capacity());
      return static_cache_cost(tree, trace, p.alpha(), chosen);
    }};
}  // namespace

}  // namespace treecache
