// Classic paging algorithms (Sleator–Tarjan setting) used by the
// Appendix C reduction experiments: LRU, FIFO, Flush-When-Full, and the
// offline optimum (Belady). Pages are dense ids 0..universe-1; a request
// faults iff the page is absent, the page is then fetched (evicting some
// page when full). Cost = number of faults.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace treecache {

using PageId = std::uint32_t;

class PagingAlgorithm {
 public:
  virtual ~PagingAlgorithm() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Serves one request; returns true on a fault.
  virtual bool access(PageId page) = 0;
  virtual void reset() = 0;
  [[nodiscard]] virtual bool cached(PageId page) const = 0;
  [[nodiscard]] std::uint64_t faults() const { return faults_; }

 protected:
  std::uint64_t faults_ = 0;
};

/// Least-Recently-Used.
class LruPaging final : public PagingAlgorithm {
 public:
  explicit LruPaging(std::size_t k) : k_(k) { TC_CHECK(k_ >= 1, "k >= 1"); }
  [[nodiscard]] std::string_view name() const override { return "LRU"; }
  bool access(PageId page) override;
  void reset() override;
  [[nodiscard]] bool cached(PageId page) const override {
    return position_.contains(page);
  }

 private:
  std::size_t k_;
  std::list<PageId> order_;  // most recent at front
  std::unordered_map<PageId, std::list<PageId>::iterator> position_;
};

/// First-In-First-Out.
class FifoPaging final : public PagingAlgorithm {
 public:
  explicit FifoPaging(std::size_t k) : k_(k) { TC_CHECK(k_ >= 1, "k >= 1"); }
  [[nodiscard]] std::string_view name() const override { return "FIFO"; }
  bool access(PageId page) override;
  void reset() override;
  [[nodiscard]] bool cached(PageId page) const override {
    for (const PageId p : queue_) {
      if (p == page) return true;
    }
    return false;
  }

 private:
  std::size_t k_;
  std::deque<PageId> queue_;
};

/// Flush-When-Full: empties the cache whenever a fault hits a full cache.
class FwfPaging final : public PagingAlgorithm {
 public:
  explicit FwfPaging(std::size_t k) : k_(k) { TC_CHECK(k_ >= 1, "k >= 1"); }
  [[nodiscard]] std::string_view name() const override { return "FWF"; }
  bool access(PageId page) override;
  void reset() override;
  [[nodiscard]] bool cached(PageId page) const override {
    for (const PageId p : cache_) {
      if (p == page) return true;
    }
    return false;
  }

 private:
  std::size_t k_;
  std::vector<PageId> cache_;
};

/// Offline optimum (Belady / MIN): number of faults of the
/// farthest-in-future eviction policy, which is optimal for paging.
[[nodiscard]] std::uint64_t belady_faults(const std::vector<PageId>& sequence,
                                          std::size_t k);

}  // namespace treecache
